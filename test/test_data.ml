(* Tests for the data layer: values, schemas, columns, relations, column
   statistics, dataset generators, and dictionary compression. *)

module Value = Dqo_data.Value
module Schema = Dqo_data.Schema
module Column = Dqo_data.Column
module Relation = Dqo_data.Relation
module Col_stats = Dqo_data.Col_stats
module Datagen = Dqo_data.Datagen
module Dictionary = Dqo_data.Dictionary
module Int_col = Dqo_data.Int_col
module Int_array = Dqo_util.Int_array

(* Most stats tests are written against literal arrays; analyze is
   storage-agnostic, so wrap them in the flat backend here. *)
let analyze a = Col_stats.analyze (Int_col.of_array a)

let qtest = QCheck_alcotest.to_alcotest

(* --- value ------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "null first" true
    (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "int vs float numeric" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "int float equal" true
    (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "string last" true
    (Value.compare (Value.Int 1000) (Value.String "a") < 0);
  Alcotest.(check string) "pp int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check bool) "to_int" true (Value.to_int (Value.Int 7) = Some 7);
  Alcotest.(check bool) "to_int none" true (Value.to_int Value.Null = None)

(* --- schema ------------------------------------------------------------ *)

let test_schema_basics () =
  let s = Schema.of_names [ ("a", Schema.T_int); ("b", Schema.T_string) ] in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check bool) "index_of" true (Schema.index_of s "b" = Some 1);
  Alcotest.(check bool) "mem" true (Schema.mem s "a" && not (Schema.mem s "c"));
  Alcotest.(check bool) "ty_of" true (Schema.ty_of s "b" = Some Schema.T_string);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.create: duplicate field a") (fun () ->
      ignore (Schema.of_names [ ("a", Schema.T_int); ("a", Schema.T_int) ]))

let test_schema_concat_renames () =
  let a = Schema.of_names [ ("x", Schema.T_int); ("y", Schema.T_int) ] in
  let b = Schema.of_names [ ("y", Schema.T_int); ("z", Schema.T_int) ] in
  let c = Schema.concat a b in
  Alcotest.(check (list string)) "renamed" [ "x"; "y"; "y'"; "z" ]
    (List.map (fun (f : Schema.field) -> f.Schema.name) (Schema.fields c))

let test_schema_project () =
  let s = Schema.of_names [ ("a", Schema.T_int); ("b", Schema.T_int) ] in
  let p = Schema.project s [ "b" ] in
  Alcotest.(check int) "projected arity" 1 (Schema.arity p);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Schema.project s [ "zz" ]))

(* --- column / relation -------------------------------------------------- *)

let test_column_ops () =
  let c = Column.of_ints [| 10; 20; 30 |] in
  Alcotest.(check int) "length" 3 (Column.length c);
  Alcotest.(check bool) "get" true (Column.get c 1 = Value.Int 20);
  Alcotest.(check bool) "take" true
    (Column.equal (Column.take c [| 2; 0 |]) (Column.of_ints [| 30; 10 |]));
  Alcotest.(check bool) "sub" true
    (Column.equal (Column.sub c ~pos:1 ~len:2) (Column.of_ints [| 20; 30 |]));
  Alcotest.check_raises "int_col on floats"
    (Invalid_argument "Column.int_col: not an int column") (fun () ->
      ignore (Column.int_col (Column.Floats [| 1.0 |])));
  (* Cross-backend equality: same contents, different physical store. *)
  let chunked =
    Int_col.init ~backend:(Int_col.Chunked Int_col.W64) 3 (fun i ->
        10 * (i + 1))
  in
  Alcotest.(check bool) "equal across backends" true
    (Column.equal c (Column.of_int_col chunked))

let test_relation_ops () =
  let schema = Schema.of_names [ ("k", Schema.T_int); ("v", Schema.T_int) ] in
  let r = Relation.of_int_rows schema [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ] in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality r);
  Alcotest.(check bool) "row" true (Relation.row r 1 = [ Value.Int 2; Value.Int 20 ]);
  let p = Relation.project r [ "v" ] in
  Alcotest.(check bool) "project" true
    (Int_col.to_array (Relation.int_col p "v") = [| 10; 20; 30 |]);
  let t = Relation.take r [| 2; 0 |] in
  Alcotest.(check bool) "take" true
    (Int_col.to_array (Relation.int_col t "k") = [| 3; 1 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Relation.create: column length mismatch") (fun () ->
      ignore
        (Relation.create schema
           [ Column.of_ints [| 1 |]; Column.of_ints [| 1; 2 |] ]))

(* --- col_stats ---------------------------------------------------------- *)

let test_col_stats_detection () =
  let s = analyze [| 1; 2; 2; 3 |] in
  Alcotest.(check bool) "sorted" true s.Col_stats.sorted;
  Alcotest.(check bool) "clustered" true s.Col_stats.clustered;
  Alcotest.(check bool) "dense" true s.Col_stats.dense;
  Alcotest.(check int) "distinct" 3 s.Col_stats.distinct;
  let s = analyze [| 5; 5; 1; 1; 3 |] in
  Alcotest.(check bool) "unsorted" false s.Col_stats.sorted;
  Alcotest.(check bool) "clustered though unsorted" true s.Col_stats.clustered;
  let s = analyze [| 1; 2; 1 |] in
  Alcotest.(check bool) "not clustered" false s.Col_stats.clustered;
  let s = analyze [| 0; 1_000_000 |] in
  Alcotest.(check bool) "sparse" false s.Col_stats.dense;
  let s = analyze [||] in
  Alcotest.(check bool) "empty sorted" true s.Col_stats.sorted;
  Alcotest.(check int) "empty distinct" 0 s.Col_stats.distinct

let test_density_ratio () =
  let s = analyze [| 0; 1; 2; 3 |] in
  Alcotest.(check (float 1e-9)) "minimal dense" 1.0 (Col_stats.density_ratio s)

(* --- datagen ------------------------------------------------------------ *)

let test_grouping_dataset_invariants () =
  List.iter
    (fun (sorted, dense) ->
      let rng = Dqo_util.Rng.create ~seed:42 in
      let d = Datagen.grouping ~rng ~n:5_000 ~groups:100 ~sorted ~dense () in
      Alcotest.(check int) "rows" 5_000 (Int_col.length d.Datagen.keys);
      Alcotest.(check int) "universe size" 100 (Array.length d.Datagen.universe);
      Alcotest.(check int) "distinct = groups" 100
        (Int_array.count_distinct (Int_col.to_array d.Datagen.keys));
      Alcotest.(check bool) "sortedness as requested" sorted
        (Int_col.is_sorted d.Datagen.keys);
      let stats = Col_stats.analyze d.Datagen.keys in
      Alcotest.(check bool) "density as requested" dense stats.Col_stats.dense;
      (* Every key drawn from the universe. *)
      Int_col.iteri d.Datagen.keys ~f:(fun _ k ->
          Alcotest.(check bool) "key in universe" true
            (Int_array.binary_search d.Datagen.universe k <> None)))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_grouping_dataset_deterministic () =
  let d1 =
    Datagen.grouping ~rng:(Dqo_util.Rng.create ~seed:5) ~n:1_000 ~groups:10
      ~sorted:false ~dense:true ()
  in
  let d2 =
    Datagen.grouping ~rng:(Dqo_util.Rng.create ~seed:5) ~n:1_000 ~groups:10
      ~sorted:false ~dense:true ()
  in
  let d3 =
    Datagen.grouping
      ~backend:(Int_col.Chunked Int_col.W64)
      ~rng:(Dqo_util.Rng.create ~seed:5) ~n:1_000 ~groups:10 ~sorted:false
      ~dense:true ()
  in
  Alcotest.(check bool) "same data" true
    (Int_col.equal d1.Datagen.keys d2.Datagen.keys);
  Alcotest.(check bool) "same data across backends" true
    (Int_col.equal d1.Datagen.keys d3.Datagen.keys)

let test_zipf_skew () =
  let rng = Dqo_util.Rng.create ~seed:9 in
  let skewed =
    Int_col.to_array (Datagen.zipf_keys ~rng ~n:20_000 ~groups:100 ~theta:1.2 ())
  in
  let count0 = Array.fold_left (fun a k -> if k = 0 then a + 1 else a) 0 skewed in
  (* Under theta=1.2 the head key takes far more than 1/100 of the mass. *)
  Alcotest.(check bool) "head heavy" true (count0 > 2_000);
  let uniform =
    Int_col.to_array (Datagen.zipf_keys ~rng ~n:20_000 ~groups:100 ~theta:0.0 ())
  in
  let count0u =
    Array.fold_left (fun a k -> if k = 0 then a + 1 else a) 0 uniform
  in
  Alcotest.(check bool) "uniform head ~200" true (count0u < 400)

let test_fk_pair_invariants () =
  List.iter
    (fun (r_sorted, s_sorted, dense) ->
      let rng = Dqo_util.Rng.create ~seed:77 in
      let p =
        Datagen.fk_pair ~rng ~r_rows:1_000 ~s_rows:3_000 ~r_groups:50 ~r_sorted
          ~s_sorted ~dense
      in
      let ids = Int_col.to_array (Relation.int_col p.Datagen.r "id") in
      let a = Int_col.to_array (Relation.int_col p.Datagen.r "a") in
      let r_id = Int_col.to_array (Relation.int_col p.Datagen.s "r_id") in
      Alcotest.(check int) "|R|" 1_000 (Array.length ids);
      Alcotest.(check int) "|S|" 3_000 (Array.length r_id);
      Alcotest.(check int) "R.id unique" 1_000 (Int_array.count_distinct ids);
      Alcotest.(check int) "R.a groups" 50 (Int_array.count_distinct a);
      Alcotest.(check bool) "R sortedness" r_sorted (Int_array.is_sorted ids);
      Alcotest.(check bool) "S sortedness" s_sorted (Int_array.is_sorted r_id);
      (* Referential integrity: every S.r_id exists in R.id. *)
      let id_set = Hashtbl.create 1024 in
      Array.iter (fun id -> Hashtbl.replace id_set id ()) ids;
      Array.iter
        (fun k ->
          Alcotest.(check bool) "FK valid" true (Hashtbl.mem id_set k))
        r_id;
      (* Density of both R.id and R.a follows the dense flag. *)
      let id_stats = analyze ids in
      let a_stats = analyze a in
      Alcotest.(check bool) "id density" dense id_stats.Col_stats.dense;
      Alcotest.(check bool) "a density" dense a_stats.Col_stats.dense;
      (* a is monotone in id: sorting by id clusters a. *)
      let perm = Dqo_exec.Sort_op.permutation (Int_col.of_array ids) in
      let a_by_id = Array.map (fun i -> a.(i)) perm in
      Alcotest.(check bool) "a monotone in id" true (Int_array.is_sorted a_by_id))
    [ (true, true, true); (false, false, true); (false, true, false) ]

(* --- layouts -------------------------------------------------------------- *)

module Layout = Dqo_data.Layout

let layout_kinds = [ `Row; `Col; `Pax ]

let prop_layout_roundtrip =
  QCheck.Test.make ~name:"layout materialise/read roundtrip" ~count:150
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_bound 200) (int_bound 1_000))
        (QCheck.int_range 1 64))
    (fun (keys, page_rows) ->
      let values = Array.map (fun k -> k * 3) keys in
      List.for_all
        (fun kind ->
          let l = Layout.of_columns ~page_rows ~keys ~values kind in
          Layout.rows l = Array.length keys
          && Layout.to_columns l = (keys, values))
        layout_kinds)

let prop_layout_scans_agree =
  QCheck.Test.make ~name:"layout scans agree across layouts" ~count:150
    QCheck.(array_of_size (QCheck.Gen.int_bound 300) (int_bound 100))
    (fun keys ->
      let values = Array.map (fun k -> k + 7) keys in
      let sums =
        List.map
          (fun kind ->
            let l = Layout.of_columns ~keys ~values kind in
            ( Layout.fold_rows l ~init:0 ~f:(fun acc k v -> acc + k + v),
              Layout.fold_keys l ~init:0 ~f:( + ) ))
          layout_kinds
      in
      match sums with
      | x :: rest -> List.for_all (( = ) x) rest
      | [] -> false)

let test_layout_random_access () =
  let keys = [| 10; 20; 30; 40; 50 |] in
  let values = [| 1; 2; 3; 4; 5 |] in
  List.iter
    (fun kind ->
      let l = Layout.of_columns ~page_rows:2 ~keys ~values kind in
      Alcotest.(check (pair int int))
        (Layout.layout_name l ^ " get")
        (30, 3) (Layout.get l 2);
      Alcotest.(check (pair int int))
        (Layout.layout_name l ^ " get last")
        (50, 5) (Layout.get l 4))
    layout_kinds

(* --- dictionary ---------------------------------------------------------- *)

let test_dictionary_strings () =
  let dict, codes = Dictionary.encode_strings [| "b"; "a"; "c"; "a" |] in
  Alcotest.(check int) "cardinality" 3 (Dictionary.cardinality dict);
  Alcotest.(check bool) "codes" true (codes = [| 1; 0; 2; 0 |]);
  Alcotest.(check string) "decode" "c" (Dictionary.decode dict 2);
  Alcotest.(check bool) "code lookup" true (Dictionary.code dict "b" = Some 1);
  Alcotest.(check bool) "absent" true (Dictionary.code dict "zz" = None);
  Alcotest.check_raises "decode out of range"
    (Invalid_argument "Dictionary.decode: code out of range") (fun () ->
      ignore (Dictionary.decode dict 3))

let prop_dictionary_roundtrip =
  QCheck.Test.make ~name:"dictionary encode/decode roundtrip" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_bound 100) (int_bound 50))
    (fun xs ->
      let dict, codes = Dictionary.encode_ints xs in
      Array.for_all2 (fun x c -> Dictionary.decode dict c = x) xs codes)

let prop_dictionary_codes_dense =
  QCheck.Test.make ~name:"dictionary codes form a minimal dense domain"
    ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 1 100) (int_bound 1_000_000))
    (fun xs ->
      let dict, codes = Dictionary.encode_ints xs in
      let stats = analyze codes in
      stats.Col_stats.lo = 0
      && stats.Col_stats.hi = Dictionary.cardinality dict - 1
      && stats.Col_stats.dense)

let prop_dictionary_order_preserving =
  QCheck.Test.make ~name:"dictionary codes preserve order" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 2 50) (int_bound 1_000))
    (fun xs ->
      let _, codes = Dictionary.encode_ints xs in
      let n = Array.length xs in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if compare xs.(i) xs.(j) <> compare codes.(i) codes.(j) then
            ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "dqo_data"
    [
      ("value", [ Alcotest.test_case "total order" `Quick test_value_order ]);
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "concat renames" `Quick test_schema_concat_renames;
          Alcotest.test_case "project" `Quick test_schema_project;
        ] );
      ( "storage",
        [
          Alcotest.test_case "column ops" `Quick test_column_ops;
          Alcotest.test_case "relation ops" `Quick test_relation_ops;
        ] );
      ( "stats",
        [
          Alcotest.test_case "detection" `Quick test_col_stats_detection;
          Alcotest.test_case "density ratio" `Quick test_density_ratio;
        ] );
      ( "datagen",
        [
          Alcotest.test_case "grouping invariants" `Quick
            test_grouping_dataset_invariants;
          Alcotest.test_case "deterministic" `Quick
            test_grouping_dataset_deterministic;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "fk pair invariants" `Quick test_fk_pair_invariants;
        ] );
      ( "layout",
        [
          qtest prop_layout_roundtrip;
          qtest prop_layout_scans_agree;
          Alcotest.test_case "random access" `Quick test_layout_random_access;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "strings" `Quick test_dictionary_strings;
          qtest prop_dictionary_roundtrip;
          qtest prop_dictionary_codes_dense;
          qtest prop_dictionary_order_preserving;
        ] );
    ]
