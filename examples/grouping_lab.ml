(* Grouping lab: a hands-on tour of the five grouping implementations of
   the paper's Section 4.1 on all four dataset shapes
   (sorted/unsorted x dense/sparse).

   For each dataset the applicable algorithms are timed and the winner is
   reported — a miniature of the paper's Figure 4 at laptop-friendly
   scale (the full sweep lives in bench/main.exe).

   Run with: dune exec examples/grouping_lab.exe [-- rows] *)

module Grouping = Dqo_exec.Grouping
module Group_result = Dqo_exec.Group_result
module Datagen = Dqo_data.Datagen
module Table_printer = Dqo_util.Table_printer

let rows =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000_000

let groups = 10_000

let () =
  Printf.printf
    "Grouping %d rows into %d groups; COUNT and SUM computed on the fly.\n\n"
    rows groups;
  let table =
    Table_printer.create
      ~header:[ "dataset"; "HG"; "SPHG"; "OG"; "SOG"; "BSG"; "winner" ]
  in
  List.iter
    (fun (sorted, dense) ->
      let rng = Dqo_util.Rng.create ~seed:7 in
      let dataset = Datagen.grouping ~rng ~n:rows ~groups ~sorted ~dense () in
      let values = Dqo_data.Int_col.const rows 1 in
      let expected = ref None in
      let cells, best =
        List.fold_left
          (fun (cells, best) alg ->
            let applicable =
              match alg with
              | Grouping.SPHG -> dense
              | Grouping.OG -> sorted
              | Grouping.HG | Grouping.SOG | Grouping.BSG -> true
            in
            if not applicable then (cells @ [ "n/a" ], best)
            else begin
              let result, ms =
                Dqo_util.Timer.best_of ~repeats:2 (fun () ->
                    Grouping.run alg ~dataset ~values)
              in
              (* All algorithms must agree on the result. *)
              (match !expected with
              | None -> expected := Some (Group_result.to_sorted_alist result)
              | Some e -> assert (e = Group_result.to_sorted_alist result));
              let best =
                match best with
                | Some (_, bms) when bms <= ms -> best
                | _ -> Some (Grouping.name alg, ms)
              in
              (cells @ [ Printf.sprintf "%.0f" ms ], best)
            end)
          ([], None) Grouping.all
      in
      let name =
        Printf.sprintf "%s/%s"
          (if sorted then "sorted" else "unsorted")
          (if dense then "dense" else "sparse")
      in
      let winner = match best with Some (n, _) -> n | None -> "-" in
      Table_printer.add_row table ((name :: cells) @ [ winner ]))
    [ (true, true); (true, false); (false, true); (false, false) ];
  print_endline "Runtime in milliseconds (best of 2):\n";
  Table_printer.print table;
  print_endline
    "Expected shape (cf. Figure 4 of the paper): OG wins when sorted,\n\
     SPHG wins when unsorted+dense, HG wins when unsorted+sparse;\n\
     SOG pays the extra sort; all five agree on the result."
