(* Online (non-blocking) aggregation: a progressive dashboard.

   The paper's §1 notes that textbook hash grouping runs in two rigid
   phases and therefore cannot produce early results.  This example
   streams a 4M-row shuffled fact table through the non-blocking
   aggregator and prints the running top-5 groups with their projected
   final counts after every 10% of the input — the answer is usable long
   before the scan finishes, and exact at the end.

   Run with: dune exec examples/online_dashboard.exe *)

module Online_agg = Dqo_exec.Online_agg
module Group_result = Dqo_exec.Group_result

let rows = 4_000_000
let groups = 50

let () =
  let rng = Dqo_util.Rng.create ~seed:123 in
  (* A skewed workload: a few popular groups dominate, as in any real
     clickstream. *)
  let keys =
    Dqo_data.Int_col.to_array
      (Dqo_data.Datagen.zipf_keys ~rng ~n:rows ~groups ~theta:0.9 ())
  in
  Dqo_util.Rng.shuffle rng keys;
  let keys = Dqo_data.Int_col.of_array keys in
  let values = Dqo_data.Int_col.const rows 1 in

  Printf.printf "Streaming %d rows (%d groups, Zipf 0.9)...\n\n" rows groups;
  let last_decile = ref 0 in
  let final =
    Online_agg.run_progressive ~keys ~values ~report_every:(rows / 100)
      (fun snapshot ->
        match snapshot with
        | [] -> ()
        | first :: _ ->
          let decile =
            int_of_float (first.Online_agg.progress *. 10.0 +. 1e-9)
          in
          if decile > !last_decile then begin
            last_decile := decile;
            let top =
              List.sort
                (fun a b ->
                  Float.compare b.Online_agg.est_count a.Online_agg.est_count)
                snapshot
            in
            Printf.printf "%3d%% done — projected top groups:" (10 * decile);
            List.iteri
              (fun i e ->
                if i < 5 then
                  Printf.printf "  #%d:%.0f" e.Online_agg.key
                    e.Online_agg.est_count)
              top;
            print_newline ()
          end)
  in
  print_newline ();
  let exact = Group_result.to_sorted_alist final in
  let top_exact =
    List.sort (fun (_, (c1, _)) (_, (c2, _)) -> compare c2 c1) exact
  in
  print_endline "Exact top groups after the full scan:";
  List.iteri
    (fun i (k, (c, _)) -> if i < 5 then Printf.printf "  #%d: %d rows\n" k c)
    top_exact
