(* Dictionary compression as a natural source of static perfect hashing.

   The paper (Section 2.1) points out that "the keys of a
   dictionary-compressed column are a natural candidate for SPH and can
   directly be used".  This example makes that concrete:

   1. a STRING column of country codes is dictionary-encoded;
   2. the code column is measured: dense and minimal by construction;
   3. grouping runs on the codes with HG (shallow choice) and SPHG (the
      choice only DQO can make) — same result, SPHG faster;
   4. the decoded result is printed.

   Run with: dune exec examples/dictionary_sph.exe *)

module Dictionary = Dqo_data.Dictionary
module Col_stats = Dqo_data.Col_stats
module Grouping = Dqo_exec.Grouping
module Group_result = Dqo_exec.Group_result

let countries =
  [| "DE"; "FR"; "US"; "JP"; "BR"; "IN"; "CN"; "GB"; "IT"; "ES";
     "NL"; "SE"; "PL"; "AR"; "MX"; "KR"; "CA"; "AU"; "ZA"; "NO" |]

let rows = 5_000_000

let () =
  let rng = Dqo_util.Rng.create ~seed:11 in
  (* A raw string column, as it would arrive from a CSV load. *)
  let column =
    Array.init rows (fun _ ->
        countries.(Dqo_util.Rng.int rng (Array.length countries)))
  in
  let dict, codes = Dictionary.encode_strings column in
  let codes = Dqo_data.Int_col.of_array codes in
  Printf.printf "Encoded %d strings into %d dictionary codes.\n" rows
    (Dictionary.cardinality dict);

  let stats = Col_stats.analyze codes in
  Format.printf "Measured code-column properties: %a@." Col_stats.pp stats;
  assert stats.Col_stats.dense;
  Printf.printf
    "The code domain is dense and minimal ([0, %d]) by construction —\n\
     exactly what static perfect hashing needs.\n\n"
    (Dictionary.cardinality dict - 1);

  let values = Dqo_data.Int_col.const rows 1 in
  let hg, hg_ms =
    Dqo_util.Timer.best_of ~repeats:3 (fun () ->
        Grouping.hash_based ~keys:codes ~values ())
  in
  let sphg, sphg_ms =
    Dqo_util.Timer.best_of ~repeats:3 (fun () ->
        Grouping.sph_based ~lo:stats.Col_stats.lo ~hi:stats.Col_stats.hi
          ~keys:codes ~values)
  in
  assert (Group_result.equal hg sphg);
  Printf.printf "hash-based grouping (SQO's only choice): %7.1f ms\n" hg_ms;
  Printf.printf "SPH grouping (unlocked by density):      %7.1f ms\n" sphg_ms;
  Printf.printf "speedup: %.1fx\n\n" (hg_ms /. sphg_ms);

  print_endline "Counts per country (decoded):";
  List.iter
    (fun (code, (count, _sum)) ->
      Printf.printf "  %s %d\n" (Dictionary.decode dict code) count)
    (Group_result.to_sorted_alist sphg)
